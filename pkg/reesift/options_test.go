package reesift

import (
	"strings"
	"testing"
	"time"
)

func TestBuildConfigDefaults(t *testing.T) {
	cfg, seed, err := buildConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 1 {
		t.Fatalf("default seed = %d, want 1", seed)
	}
	if len(cfg.Nodes) != 4 || cfg.Nodes[0] != "node-a1" {
		t.Fatalf("default nodes = %v", cfg.Nodes)
	}
	if cfg.FTMNode == cfg.HeartbeatNode {
		t.Fatal("FTM and Heartbeat ARMOR on the same node by default")
	}
	if !cfg.FixRegistrationRace {
		t.Fatal("registration race must be fixed by default")
	}
}

func TestOptionValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"one node", []Option{WithNodes(1)}, "at least 2 nodes"},
		{"few names", []Option{WithNodeNames("solo")}, "at least 2 nodes"},
		{"dup names", []Option{WithNodeNames("a", "a")}, "duplicate hostname"},
		{"empty name", []Option{WithNodeNames("a", "")}, "empty hostname"},
		{"zero heartbeat", []Option{WithHeartbeatPeriod(0)}, "must be positive"},
		{"negative ftm heartbeat", []Option{WithFTMHeartbeatPeriod(-time.Second)}, "must be positive"},
		{"zero armor heartbeat", []Option{WithHeartbeatArmorPeriod(0)}, "must be positive"},
		{"zero aya", []Option{WithDaemonAYAPeriod(0)}, "must be positive"},
		{"zero install", []Option{WithInstallDelay(0)}, "must be positive"},
		{"zero app start", []Option{WithAppStartDelay(0)}, "must be positive"},
		{"negative scc delay", []Option{WithSCCCommandDelay(-time.Second)}, "must not be negative"},
		{"ftm off cluster", []Option{WithFTMNode("elsewhere")}, "not in the cluster"},
		{"hb off cluster", []Option{WithHeartbeatNode("elsewhere")}, "not in the cluster"},
		{"ftm equals hb", []Option{WithFTMNode("node-a1"), WithHeartbeatNode("node-a1")},
			"must be on different nodes"},
		{"nil option", []Option{nil}, "nil Option"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewCluster(tc.opts...); err == nil {
				t.Fatalf("NewCluster(%s) succeeded, want error containing %q", tc.name, tc.want)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestFTMPlacementMovesHeartbeat(t *testing.T) {
	// Placing the FTM on the default heartbeat node must relocate the
	// Heartbeat ARMOR rather than fail: only an explicit double booking
	// is a conflict.
	cfg, _, err := buildConfig([]Option{WithFTMNode("node-a2")})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FTMNode != "node-a2" {
		t.Fatalf("FTMNode = %q", cfg.FTMNode)
	}
	if cfg.HeartbeatNode == "node-a2" {
		t.Fatal("Heartbeat ARMOR not relocated off the FTM node")
	}
}

func TestHeartbeatPlacementMovesFTM(t *testing.T) {
	// The mirror of TestFTMPlacementMovesHeartbeat: placing the
	// Heartbeat ARMOR on the default FTM node relocates the FTM.
	cfg, _, err := buildConfig([]Option{WithHeartbeatNode("node-a1")})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HeartbeatNode != "node-a1" {
		t.Fatalf("HeartbeatNode = %q", cfg.HeartbeatNode)
	}
	if cfg.FTMNode == "node-a1" {
		t.Fatal("FTM not relocated off the Heartbeat node")
	}
}

func TestRunUntilDoneTwice(t *testing.T) {
	// A second RunUntilDone after an earlier completed run must only
	// wait for the not-yet-done submissions, not spin to the limit.
	c, err := NewCluster(WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.RunUntilDone(10 * time.Minute) {
		t.Fatal("no-submission RunUntilDone returned false")
	}
	ha := c.Submit(RoverApp(1), c.Now()+5*time.Second)
	if !c.RunUntilDone(c.Now() + 10*time.Minute) {
		t.Fatal("first submission did not complete")
	}
	after := c.Now()
	hb := c.Submit(RoverApp(2), c.Now()+5*time.Second)
	if !c.RunUntilDone(c.Now() + 10*time.Minute) {
		t.Fatal("second submission did not complete")
	}
	if !ha.Done || !hb.Done {
		t.Fatalf("handles: a=%v b=%v", ha.Done, hb.Done)
	}
	// The second run must have stopped at app B's completion, well
	// before its 10-minute limit.
	if c.Now()-after > 5*time.Minute {
		t.Fatalf("second RunUntilDone spun to the limit: %v -> %v", after, c.Now())
	}
}

func TestRunUntilDoneIgnoresForeignSubmissions(t *testing.T) {
	// An application submitted through the Env() escape hatch completes
	// first; RunUntilDone must keep running until the tracked
	// submission finishes.
	c, err := NewCluster(WithSeed(12), WithNodes(6))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	foreign := c.Env().Submit(RoverApp(1, "n1", "n2"), 5*time.Second)
	tracked := c.Submit(RoverApp(2, "n3", "n4"), 40*time.Second)
	if !c.RunUntilDone(20 * time.Minute) {
		t.Fatalf("tracked submission did not complete (foreign done=%v tracked done=%v)",
			foreign.Done, tracked.Done)
	}
	if !tracked.Done {
		t.Fatal("tracked handle not done")
	}
}

func TestOptionsResolve(t *testing.T) {
	cfg, seed, err := buildConfig([]Option{
		WithNodes(6),
		WithSeed(99),
		WithHeartbeatPeriod(5 * time.Second),
		WithDaemonAYAPeriod(7 * time.Second),
		WithSharedCheckpoints(),
		WithoutSelfChecks(),
		WithRegistrationRace(),
		WithSCCCommandDelay(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if seed != 99 {
		t.Fatalf("seed = %d", seed)
	}
	if len(cfg.Nodes) != 6 || cfg.Nodes[0] != "n1" || cfg.Nodes[5] != "n6" {
		t.Fatalf("nodes = %v", cfg.Nodes)
	}
	if cfg.FTMHeartbeatPeriod != 5*time.Second || cfg.HeartbeatArmorPeriod != 5*time.Second {
		t.Fatalf("heartbeat periods = %v / %v", cfg.FTMHeartbeatPeriod, cfg.HeartbeatArmorPeriod)
	}
	if cfg.DaemonAYAPeriod != 7*time.Second {
		t.Fatalf("AYA period = %v", cfg.DaemonAYAPeriod)
	}
	if !cfg.SharedCheckpoints || !cfg.DisableSelfChecks || cfg.FixRegistrationRace {
		t.Fatalf("flags: shared=%v nochecks=%v fixrace=%v",
			cfg.SharedCheckpoints, cfg.DisableSelfChecks, cfg.FixRegistrationRace)
	}
	if cfg.SCCCommandDelay != 0 {
		t.Fatalf("SCC command delay = %v, want explicit 0", cfg.SCCCommandDelay)
	}
}

func TestClusterRunsRoverSubmission(t *testing.T) {
	c, err := NewCluster(WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := c.Submit(RoverApp(1), 5*time.Second)
	if !c.RunUntilDone(10 * time.Minute) {
		t.Fatal("application did not complete")
	}
	if p, ok := h.PerceivedTime(); !ok || p <= 0 {
		t.Fatalf("perceived time = %v, ok=%v", p, ok)
	}
	if c.Log().Count("sift-initialized") != 1 {
		t.Fatal("SIFT environment never initialized")
	}
}

func TestInjectionMultiAppDefaultsToSixNodes(t *testing.T) {
	// A multi-application run with a tuning option must still get the
	// six-node testbed, not the four-node default — and complete.
	res, err := Injection{
		Seed:   5,
		Model:  ModelNone,
		Target: TargetNone,
		Apps: []*AppSpec{
			RoverApp(1, "n1", "n2"),
			OTISApp(2, "n3", "n4"),
		},
		Cluster: []Option{WithHeartbeatPeriod(10 * time.Second)},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SystemFailure || !res.Done {
		t.Fatalf("multi-app run misclassified: done=%v sysfail=%v", res.Done, res.SystemFailure)
	}
}

func TestInjectionRejectsAppOffCluster(t *testing.T) {
	_, err := Injection{
		Seed:   1,
		Model:  ModelNone,
		Target: TargetNone,
		Apps:   []*AppSpec{RoverApp(1, "node-a1", "node-a2")},
		Cluster: []Option{
			WithNodeNames("x1", "x2"),
		},
	}.Run()
	if err == nil || !strings.Contains(err.Error(), "not in the cluster") {
		t.Fatalf("err = %v, want app-placement validation error", err)
	}
}

func TestInjectionValidatesClusterOptions(t *testing.T) {
	_, err := Injection{
		Seed:    1,
		Model:   ModelSIGINT,
		Target:  TargetFTM,
		Apps:    []*AppSpec{RoverApp(1)},
		Cluster: []Option{WithNodes(1)},
	}.Run()
	if err == nil || !strings.Contains(err.Error(), "at least 2 nodes") {
		t.Fatalf("err = %v, want node-count validation error", err)
	}
}
