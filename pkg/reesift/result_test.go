package reesift

import (
	"encoding/json"
	"strings"
	"testing"

	"reesift/internal/stats"
)

func TestCellConstructors(t *testing.T) {
	if c := Str("x"); c.Kind != CellString || c.Text != "x" {
		t.Fatalf("Str: %+v", c)
	}
	if c := Int(42); c.Kind != CellInt || c.Text != "42" || c.Int != 42 {
		t.Fatalf("Int: %+v", c)
	}
	if c := Float(1.5, 2); c.Kind != CellFloat || c.Text != "1.50" || c.Float != 1.5 {
		t.Fatalf("Float: %+v", c)
	}
	if c := Seconds(2.345); c.Kind != CellSeconds || c.Text != "2.35" {
		t.Fatalf("Seconds: %+v", c)
	}
	if c := SampleCell(nil); c.Text != "-" {
		t.Fatalf("empty SampleCell: %+v", c)
	}
	var s stats.Sample
	s.Add(1)
	s.Add(3)
	c := SampleCell(&s)
	if c.Kind != CellSample || c.Mean != 2 || c.N != 2 {
		t.Fatalf("SampleCell: %+v", c)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	r := NewResult(&Table{
		ID:     "table-x",
		Title:  "demo",
		Header: []string{"K", "V"},
		Rows: [][]Cell{
			{Str("runs"), Int(7)},
			{Str("mean"), Float(1.25, 2)},
		},
		Notes: []string{"note"},
	})
	r.Scenario = "demo"
	r.Runs = 7
	r.Injections = 9
	r.WallClockSeconds = 0.5

	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenario != "demo" || back.Runs != 7 || back.Injections != 9 {
		t.Fatalf("round trip lost totals: %+v", back)
	}
	if len(back.Tables) != 1 || len(back.Tables[0].Rows) != 2 {
		t.Fatalf("round trip lost tables: %+v", back)
	}
	if got := back.Tables[0].Rows[0][1]; got.Kind != CellInt || got.Int != 7 {
		t.Fatalf("typed cell lost: %+v", got)
	}
}

func TestRenderRaggedRows(t *testing.T) {
	// Rows wider than the header must render, not panic.
	tab := &Table{
		ID:     "ragged",
		Title:  "ragged",
		Header: []string{"A"},
		Rows:   [][]Cell{{Str("x"), Str("y"), Str("z")}},
	}
	out := tab.Render()
	if !strings.Contains(out, "z") {
		t.Fatalf("render dropped cells:\n%s", out)
	}
}

func TestResultRender(t *testing.T) {
	r := NewResult(
		&Table{ID: "a", Title: "first", Header: []string{"H"}, Rows: [][]Cell{{Str("v")}}},
		&Table{ID: "b", Title: "second", Header: []string{"H"}},
	)
	out := r.Render()
	if !strings.Contains(out, "A: first") || !strings.Contains(out, "B: second") {
		t.Fatalf("render:\n%s", out)
	}
}
