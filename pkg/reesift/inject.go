package reesift

import (
	"fmt"
	"time"

	"reesift/internal/chaos"
	"reesift/internal/inject"
	"reesift/internal/sim"
)

// Model selects the error model of a fault-injection run (paper
// Table 2).
type Model = inject.Model

// Error models: the paper's Table 2 set plus the extension models
// (message omission/corruption, checkpoint-store corruption, whole-node
// crash, shared-store corruption, one-sided partition, and the compound
// coordinator that arms two models with a controlled lag).
const (
	ModelNone       = inject.ModelNone
	ModelSIGINT     = inject.ModelSIGINT
	ModelSIGSTOP    = inject.ModelSIGSTOP
	ModelRegister   = inject.ModelRegister
	ModelText       = inject.ModelText
	ModelHeap       = inject.ModelHeap
	ModelHeapData   = inject.ModelHeapData
	ModelAppHeap    = inject.ModelAppHeap
	ModelMsgDrop    = inject.ModelMsgDrop
	ModelMsgCorrupt = inject.ModelMsgCorrupt
	ModelCheckpoint = inject.ModelCheckpoint
	ModelNodeCrash  = inject.ModelNodeCrash
	ModelSharedDisk = inject.ModelSharedDisk
	ModelPartition  = inject.ModelPartition
	ModelCompound   = inject.ModelCompound
	// ModelPartitionSym is the symmetric (two-sided) partition variant:
	// both directions of the target node's traffic are dropped until the
	// scheduled heal — the classic split brain.
	ModelPartitionSym = inject.ModelPartitionSym
)

// CompoundSpec and CompoundStage describe a ModelCompound run: two
// registered error models armed with a controlled lag (the paper's
// Section 6 correlated failures, reproduced on purpose). CompoundDefault
// is the Section 6 pair: the Heartbeat ARMOR suspended, then the FTM's
// node crashed under it.
type (
	CompoundSpec  = inject.CompoundSpec
	CompoundStage = inject.CompoundStage
)

// CompoundDefault returns the default compound pairing (see
// inject.CompoundDefault).
func CompoundDefault() CompoundSpec { return inject.CompoundDefault() }

// Models returns every registered error model in ascending order
// (ModelNone first). The set is registry-driven: a model added to
// internal/inject shows up here without façade changes.
func Models() []Model { return inject.Models() }

// Target selects the process under injection.
type Target = inject.TargetKind

// Injection targets (the paper's four: the application plus the three
// ARMOR kinds).
const (
	TargetNone      = inject.TargetNone
	TargetApp       = inject.TargetApp
	TargetFTM       = inject.TargetFTM
	TargetExecArmor = inject.TargetExecArmor
	TargetHeartbeat = inject.TargetHeartbeat
)

// InjectionResult is one run's classified outcome.
type InjectionResult = inject.Result

// FS is the cluster-wide nonvolatile store applications write results
// to.
type FS = sim.FS

// Injection describes one fault-injection run driven through the façade:
// a fresh cluster is built from the Cluster options, the applications
// are submitted, the error model fires against the target, and the
// outcome is classified exactly as the paper does.
type Injection struct {
	// Seed determines the run (cluster, application, and injection
	// draw). The seed of any WithSeed option in Cluster is ignored;
	// Seed governs.
	Seed int64
	// Model is the error model to inject.
	Model Model
	// Target is the process under injection.
	Target Target
	// Rank selects which application process / Execution ARMOR is
	// targeted (default 0).
	Rank int
	// Element names the FTM element for ModelHeapData.
	Element string
	// Apps lists the applications to run; the first is the injection
	// subject for application-targeted models.
	Apps []*AppSpec
	// Cluster configures the run's environment with the same options
	// NewCluster takes. Empty means the model's default testbed.
	Cluster []Option
	// SubmitAt is the submission time (default 5 s).
	SubmitAt time.Duration
	// Window is the interval after SubmitAt in which the injection time
	// is drawn uniformly (default: the fault-free perceived execution
	// time).
	Window time.Duration
	// RepeatEvery paces repeated-injection models (default 2 s).
	RepeatEvery time.Duration
	// Timeout is the run's system-failure deadline (default 400 s, or
	// 600 s for multi-application runs).
	Timeout time.Duration
	// NetFaultProb is the per-message fault probability while a message
	// fault model (ModelMsgDrop, ModelMsgCorrupt) is active; default
	// 0.5.
	NetFaultProb float64
	// NetFaultFor is the length of the transient network-fault interval
	// for the message fault models; default 20 s.
	NetFaultFor time.Duration
	// NodeRestartAfter is the node outage length for ModelNodeCrash;
	// default 30 s.
	NodeRestartAfter time.Duration
	// Compound describes the two correlated stages of a ModelCompound
	// run; nil selects CompoundDefault (the paper's Section 6 pair).
	Compound *CompoundSpec
	// CheckVerdict, if set, classifies the application output on the
	// shared store after the run ("correct"/"incorrect"/"missing").
	CheckVerdict func(fs *FS) string
	// Census, if set, receives this run's tally — the attribution hook
	// for one-off runs outside a Campaign (campaigns keep their own
	// census and ignore this field). The process-wide census is always
	// updated regardless.
	Census *Census
	// Arrival, when non-nil, turns the run into a long-horizon chaos
	// trial: the Model/Target/Rank become the primary stage of a
	// continuous arrival process, the run lasts Arrival.Horizon (Timeout
	// is ignored), and the result carries ChaosStats. With no Apps, the
	// chaos relay service is installed automatically.
	Arrival *Arrival
}

// Run executes the injection run. Option validation errors surface here,
// before any simulation work.
func (i Injection) Run() (InjectionResult, error) {
	cfg, err := i.config()
	if err != nil {
		return InjectionResult{}, err
	}
	if i.Arrival != nil {
		return chaos.Trial(cfg, *i.Arrival), nil
	}
	return inject.Run(cfg), nil
}

// config validates the injection and resolves it into the internal run
// configuration. It is shared by Run and by Campaign, which derives the
// per-run seed and threads its census before executing.
func (i Injection) config() (inject.Config, error) {
	if !inject.Registered(i.Model) {
		return inject.Config{}, fmt.Errorf("reesift: Injection: unknown error model %d (see Models())", int(i.Model))
	}
	switch i.Model {
	case ModelHeapData:
		if i.Target == TargetApp {
			return inject.Config{}, fmt.Errorf("reesift: Injection: %s targets a SIFT ARMOR element, not the application (use %s for application heap errors)", ModelHeapData, ModelAppHeap)
		}
		if i.Element == "" {
			return inject.Config{}, fmt.Errorf("reesift: Injection: %s needs Element (the FTM element to corrupt)", ModelHeapData)
		}
	case ModelCheckpoint:
		if i.Target == TargetApp {
			return inject.Config{}, fmt.Errorf("reesift: Injection: %s targets an ARMOR's checkpoint store; applications are not microcheckpointed", ModelCheckpoint)
		}
	case ModelAppHeap:
		if i.Target != TargetApp {
			return inject.Config{}, fmt.Errorf("reesift: Injection: %s injects into the application heap; Target must be TargetApp", ModelAppHeap)
		}
	case ModelCompound:
		if err := inject.ValidateCompound(i.Compound); err != nil {
			return inject.Config{}, fmt.Errorf("reesift: Injection: %w", err)
		}
	}
	if i.NetFaultProb < 0 || i.NetFaultProb > 1 {
		return inject.Config{}, fmt.Errorf("reesift: Injection: NetFaultProb %v outside [0, 1]", i.NetFaultProb)
	}
	cfg := inject.Config{
		Seed:             i.Seed,
		Model:            i.Model,
		Target:           i.Target,
		Rank:             i.Rank,
		Element:          i.Element,
		Apps:             i.Apps,
		SubmitAt:         i.SubmitAt,
		Window:           i.Window,
		RepeatEvery:      i.RepeatEvery,
		Timeout:          i.Timeout,
		NetFaultProb:     i.NetFaultProb,
		NetFaultFor:      i.NetFaultFor,
		NodeRestartAfter: i.NodeRestartAfter,
		Compound:         i.Compound,
		CheckVerdict:     i.CheckVerdict,
	}
	if i.Census != nil {
		cfg.Census = []*inject.Census{i.Census}
	}
	// The run's node list: from the options when given, otherwise the
	// model's defaults — the four-node testbed, or the six-node
	// multi-application testbed when more than one app runs.
	defaultCount := 4
	if len(i.Apps) > 1 {
		defaultCount = 6
	}
	nodes := defaultNodeNames(defaultCount)
	if len(i.Cluster) > 0 {
		env, _, err := buildConfigNodes(i.Cluster, defaultCount)
		if err != nil {
			return inject.Config{}, err
		}
		cfg.Env = &env
		nodes = env.Nodes
	}
	// Chaos trials: install the relay service when no application is
	// given, and validate the arrival spec against the primary stage —
	// eagerly, because the arrival processes run inside kernel callbacks
	// with no error path.
	if i.Arrival != nil {
		if len(cfg.Apps) == 0 {
			ftm, hb := nodes[0], nodes[1%len(nodes)]
			if cfg.Env != nil {
				ftm, hb = cfg.Env.FTMNode, cfg.Env.HeartbeatNode
			}
			cfg.Apps = []*AppSpec{chaos.ServiceApp(1, serviceNode(nodes, ftm, hb), i.Arrival.ServicePeriod)}
		}
		primary := inject.CompoundStage{Model: i.Model, Target: i.Target, Rank: i.Rank}
		if err := chaos.Validate(*i.Arrival, primary); err != nil {
			return inject.Config{}, fmt.Errorf("reesift: Injection: %w", err)
		}
	}
	// Eager validation: every application must be placed on cluster
	// nodes, or its ranks silently never launch and the run is
	// misclassified as a system failure.
	inCluster := func(name string) bool {
		for _, n := range nodes {
			if n == name {
				return true
			}
		}
		return false
	}
	for _, app := range cfg.Apps {
		if app == nil {
			return inject.Config{}, fmt.Errorf("reesift: Injection: nil AppSpec")
		}
		for _, n := range app.Nodes {
			if !inCluster(n) {
				return inject.Config{}, fmt.Errorf("reesift: Injection: app %d placed on node %q, which is not in the cluster %v", app.ID, n, nodes)
			}
		}
	}
	return cfg, nil
}
