package reesift

import (
	"fmt"
	"strconv"
	"strings"

	"reesift/internal/stats"
)

// CellKind tags the typed value a table cell carries.
type CellKind string

// Cell kinds.
const (
	CellString  CellKind = "string"
	CellInt     CellKind = "int"
	CellFloat   CellKind = "float"
	CellSeconds CellKind = "seconds"
	CellSample  CellKind = "sample"
)

// Cell is one typed table cell. Text always holds the rendered form;
// the numeric fields are populated according to Kind so consumers can
// read measurements without parsing formatted strings.
type Cell struct {
	Kind CellKind `json:"kind"`
	Text string   `json:"text"`
	// Int is meaningful for CellInt. The numeric fields are always
	// emitted (no omitempty) so zero-valued measurements stay
	// machine-readable; switch on Kind to know which field carries the
	// value.
	Int int64 `json:"int"`
	// Float is meaningful for CellFloat and CellSeconds (seconds as a
	// float).
	Float float64 `json:"float"`
	// Mean, CI95, and N are meaningful for CellSample (a "mean ± ci"
	// cell).
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	N    int     `json:"n"`
}

// String returns the rendered cell text.
func (c Cell) String() string { return c.Text }

// Str builds a string cell.
func Str(s string) Cell { return Cell{Kind: CellString, Text: s} }

// Int builds an integer cell.
func Int(n int) Cell {
	return Cell{Kind: CellInt, Text: strconv.Itoa(n), Int: int64(n)}
}

// Float builds a float cell rendered with prec decimals.
func Float(v float64, prec int) Cell {
	return Cell{Kind: CellFloat, Text: strconv.FormatFloat(v, 'f', prec, 64), Float: v}
}

// Seconds builds a duration cell rendered as seconds with two decimals.
func Seconds(seconds float64) Cell {
	return Cell{Kind: CellSeconds, Text: strconv.FormatFloat(seconds, 'f', 2, 64), Float: seconds}
}

// SampleCell builds a "mean ± 95% CI" cell from a statistics sample; an
// empty sample renders as "-".
func SampleCell(s *stats.Sample) Cell {
	if s == nil || s.N() == 0 {
		return Cell{Kind: CellSample, Text: "-"}
	}
	return Cell{
		Kind: CellSample,
		Text: s.MeanCI(),
		Mean: s.Mean(),
		CI95: s.CI95(),
		N:    s.N(),
	}
}

// Row builds a row from cells (a small readability helper for table
// literals).
func Row(cells ...Cell) []Cell { return cells }

// StrRow builds a row of string cells — separators and header-like rows.
func StrRow(texts ...string) []Cell {
	row := make([]Cell, len(texts))
	for i, s := range texts {
		row[i] = Str(s)
	}
	return row
}

// Table is one experiment product shaped like a paper table or figure.
type Table struct {
	// ID names the paper artifact ("table4", "figure6", ...).
	ID    string `json:"id"`
	Title string `json:"title"`
	// Header holds the column names.
	Header []string `json:"header"`
	// Rows holds typed cells, one slice per table row.
	Rows [][]Cell `json:"rows"`
	// Notes carries the footnotes printed under the table.
	Notes []string `json:"notes,omitempty"`
}

// Render formats the table as aligned text, the CLI's -format text
// output.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", strings.ToUpper(t.ID), t.Title)
	// Width slots cover the widest row, not just the header, so a
	// ragged table renders instead of panicking.
	cols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell.Text) > widths[i] {
				widths[i] = len(cell.Text)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		texts := make([]string, len(row))
		for i, cell := range row {
			texts[i] = cell.Text
		}
		line(texts)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
