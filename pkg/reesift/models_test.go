package reesift

import (
	"testing"
	"time"
)

// facadeTarget picks a sensible injection subject for each model so the
// registry-driven sweep below can build a runnable Injection for any
// registered model without hard-coding the set.
func facadeTarget(m Model) (Target, string) {
	switch m {
	case ModelAppHeap, ModelSharedDisk:
		return TargetApp, ""
	case ModelHeapData:
		return TargetFTM, "node_mgmt"
	default:
		return TargetFTM, ""
	}
}

// TestEveryRegisteredModelInjectsThroughFacade sweeps the injector
// registry through the public façade: every registered model must build,
// run deterministically, and actually insert an error for at least one
// seed. A model added to internal/inject is covered here automatically.
func TestEveryRegisteredModelInjectsThroughFacade(t *testing.T) {
	ms := Models()
	if len(ms) < 12 {
		t.Fatalf("Models() returned %d models, want the paper's 8 plus 4 extensions", len(ms))
	}
	for _, m := range ms {
		if m == ModelNone {
			continue
		}
		m := m
		t.Run(m.String(), func(t *testing.T) {
			target, element := facadeTarget(m)
			injected := false
			for seed := int64(0); seed < 6 && !injected; seed++ {
				mk := func() (InjectionResult, error) {
					return Injection{
						Seed:    4000 + seed,
						Model:   m,
						Target:  target,
						Element: element,
						Apps:    []*AppSpec{RoverApp(1)},
					}.Run()
				}
				a, err := mk()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				b, err := mk()
				if err != nil {
					t.Fatalf("seed %d rerun: %v", seed, err)
				}
				if a.Injected != b.Injected || a.Class != b.Class ||
					a.Perceived != b.Perceived || a.SystemFailure != b.SystemFailure {
					t.Fatalf("seed %d diverged:\n%+v\nvs\n%+v", seed, a, b)
				}
				injected = a.Injected > 0
			}
			if !injected {
				t.Fatalf("model %s never injected across 6 seeds", m)
			}
		})
	}
}

// TestInjectionModelValidation pins the façade's eager option
// validation for the model/target combinations that cannot work.
func TestInjectionModelValidation(t *testing.T) {
	app := func() []*AppSpec { return []*AppSpec{RoverApp(1)} }
	cases := []struct {
		name string
		inj  Injection
	}{
		{"unknown model", Injection{Model: Model(999), Target: TargetFTM, Apps: app()}},
		{"heap-targeted into application", Injection{Model: ModelHeapData, Target: TargetApp, Apps: app()}},
		{"heap-targeted without element", Injection{Model: ModelHeapData, Target: TargetFTM, Apps: app()}},
		{"checkpoint into application", Injection{Model: ModelCheckpoint, Target: TargetApp, Apps: app()}},
		{"app-heap into FTM", Injection{Model: ModelAppHeap, Target: TargetFTM, Apps: app()}},
		{"fault probability above 1", Injection{Model: ModelMsgDrop, Target: TargetFTM, NetFaultProb: 1.5, Apps: app()}},
		{"negative fault probability", Injection{Model: ModelMsgDrop, Target: TargetFTM, NetFaultProb: -0.1, Apps: app()}},
		{"nested compound stage", Injection{Model: ModelCompound, Target: TargetFTM, Apps: app(),
			Compound: &CompoundSpec{First: CompoundStage{Model: ModelCompound, Target: TargetFTM},
				Second: CompoundStage{Model: ModelNodeCrash, Target: TargetFTM}}}},
		{"unregistered compound stage", Injection{Model: ModelCompound, Target: TargetFTM, Apps: app(),
			Compound: &CompoundSpec{First: CompoundStage{Model: Model(999), Target: TargetFTM},
				Second: CompoundStage{Model: ModelNodeCrash, Target: TargetFTM}}}},
		{"negative compound lag", Injection{Model: ModelCompound, Target: TargetFTM, Apps: app(),
			Compound: &CompoundSpec{First: CompoundStage{Model: ModelSIGSTOP, Target: TargetHeartbeat},
				Second: CompoundStage{Model: ModelNodeCrash, Target: TargetFTM}, Lag: -time.Second}}},
		{"non-composable compound stage", Injection{Model: ModelCompound, Target: TargetFTM, Apps: app(),
			Compound: &CompoundSpec{First: CompoundStage{Model: ModelRegister, Target: TargetFTM},
				Second: CompoundStage{Model: ModelNodeCrash, Target: TargetFTM}}}},
		{"two network-interval compound stages", Injection{Model: ModelCompound, Target: TargetFTM, Apps: app(),
			Compound: &CompoundSpec{First: CompoundStage{Model: ModelMsgDrop, Target: TargetHeartbeat},
				Second: CompoundStage{Model: ModelPartition, Target: TargetApp}}}},
		{"compound stage without target", Injection{Model: ModelCompound, Target: TargetFTM, Apps: app(),
			Compound: &CompoundSpec{First: CompoundStage{Model: ModelSIGSTOP, Target: TargetHeartbeat},
				Second: CompoundStage{Model: ModelNodeCrash}}}},
	}
	for _, c := range cases {
		if _, err := c.inj.Run(); err == nil {
			t.Errorf("%s: expected a validation error", c.name)
		}
	}
}

// TestNetFaultKnobsPassThrough: the façade's tuning knobs must reach
// the injection framework — a certain-drop long interval inserts more
// errors than a near-zero-probability one on the same seed.
func TestNetFaultKnobsPassThrough(t *testing.T) {
	at := func(seed int64, prob float64) int {
		res, err := Injection{
			Seed:         seed,
			Model:        ModelMsgDrop,
			Target:       TargetFTM,
			NetFaultProb: prob,
			NetFaultFor:  40 * time.Second,
			Apps:         []*AppSpec{RoverApp(1)},
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Injected
	}
	// The drawn interval can fall after completion (nothing inserted);
	// scan for a seed where the certain-drop arm lands.
	for seed := int64(6100); seed < 6110; seed++ {
		hi := at(seed, 1)
		if hi == 0 {
			continue
		}
		if lo := at(seed, 0.01); hi <= lo {
			t.Fatalf("seed %d: NetFaultProb ignored: injected %d at p=0.01 vs %d at p=1", seed, lo, hi)
		}
		return
	}
	t.Fatal("no seed in 6100..6109 armed the fault interval")
}

// TestMsgDropRecoversThroughFacade exercises one extension model
// end-to-end with verdict checking: a transient omission interval on the
// FTM's traffic must not stop the application from producing correct
// output.
func TestMsgDropRecoversThroughFacade(t *testing.T) {
	done := 0
	for seed := int64(0); seed < 4; seed++ {
		res, err := Injection{
			Seed:   5000 + seed,
			Model:  ModelMsgDrop,
			Target: TargetFTM,
			Apps:   []*AppSpec{RoverApp(1)},
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Done {
			done++
		}
	}
	if done == 0 {
		t.Fatal("no msg-drop run completed: omission should be masked by retransmission")
	}
}
