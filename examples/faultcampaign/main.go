// Faultcampaign: a SIGINT/SIGSTOP injection campaign against all four
// targets (application, FTM, Execution ARMOR, Heartbeat ARMOR) authored
// on the public Campaign API, printing a Table 4-shaped summary. This is
// the programmatic equivalent of `reesift -exp table4` with custom
// campaign sizes.
//
// The campaign derives every run's seed from its cell identity
// ("faultcampaign/SIGINT/FTM", run), and an Observer streams per-run
// progress to stderr — callbacks arrive in seed order at any worker
// count.
package main

import (
	"flag"
	"fmt"
	"os"

	"reesift/pkg/reesift"
)

func main() {
	runs := flag.Int("runs", 8, "injection runs per model x target cell")
	seed := flag.Int64("seed", 1, "campaign base seed")
	progress := flag.Bool("progress", false, "stream per-run progress to stderr")
	flag.Parse()
	os.Exit(run(*runs, *seed, *progress))
}

func run(runsPerCell int, seed int64, progress bool) int {
	models := []reesift.Model{reesift.ModelSIGINT, reesift.ModelSIGSTOP}
	targets := []reesift.Target{
		reesift.TargetApp, reesift.TargetFTM,
		reesift.TargetExecArmor, reesift.TargetHeartbeat,
	}

	campaign := reesift.Campaign{
		Name: "faultcampaign",
		Seed: seed,
	}
	for _, model := range models {
		for _, target := range targets {
			campaign.Cells = append(campaign.Cells, reesift.CampaignCell{
				Name: model.String() + "/" + target.String(),
				Runs: runsPerCell,
				Injection: reesift.Injection{
					Model:  model,
					Target: target,
					Apps:   []*reesift.AppSpec{reesift.RoverApp(1, "node-a1", "node-a2")},
				},
			})
		}
	}
	if progress {
		campaign.Observer = &reesift.Observer{
			OnResult: func(ref reesift.RunRef, res reesift.InjectionResult) {
				fmt.Fprintf(os.Stderr, "%-28s run %2d seed %-20d injected=%d recovered=%v\n",
					ref.Cell, ref.Run, ref.Seed, res.Injected, res.Recovered)
			},
		}
	}
	cres, err := campaign.Run()
	if err != nil {
		fmt.Println("campaign setup failed:", err)
		return 1
	}

	fmt.Printf("crash/hang campaign: %d runs per model x target\n\n", runsPerCell)
	fmt.Printf("%-9s %-16s %5s %5s %5s  %-15s %-15s %-12s\n",
		"MODEL", "TARGET", "INJ", "REC", "CORR", "PERCEIVED (s)", "ACTUAL (s)", "RECOVERY (s)")
	totalRuns, totalSys := 0, 0
	for _, model := range models {
		for _, target := range targets {
			cell := cres.Cell(model.String() + "/" + target.String())
			var perceived, actual, recovery reesift.Sample
			injected, recovered, correlated := 0, 0, 0
			for _, res := range cell.Results {
				if res.Injected == 0 {
					continue
				}
				injected++
				totalRuns++
				if res.Done && !res.SystemFailure {
					recovered++
					perceived.AddDuration(res.Perceived)
					actual.AddDuration(res.Actual)
				} else {
					totalSys++
				}
				if res.Correlated {
					correlated++
				}
				if res.Recovered {
					recovery.AddDuration(res.RecoveryTime)
				}
			}
			fmt.Printf("%-9s %-16s %5d %5d %5d  %-15s %-15s %-12s\n",
				model, target, injected, recovered, correlated,
				perceived.MeanCI(), actual.MeanCI(), recovery.MeanCI())
		}
	}
	fmt.Printf("\n%d injected runs, %d system failures (campaign tally: %d runs, %d insertions)\n",
		totalRuns, totalSys, cres.Tally.Runs, cres.Tally.Injections)
	fmt.Printf("95%% no-failure bound on unrecoverable probability: p < %.5f\n",
		reesift.NoFailureBound(totalRuns))
	if totalSys > 0 {
		fmt.Println("(the paper recovered all 734 crash/hang injections)")
		return 1
	}
	return 0
}
