// Faultcampaign: a small SIGINT/SIGSTOP injection campaign against all
// four targets (application, FTM, Execution ARMOR, Heartbeat ARMOR)
// driven through the reesift façade, printing a Table 4-shaped summary.
// This is the programmatic equivalent of `reesift -exp table4` with
// custom campaign sizes.
package main

import (
	"fmt"
	"os"

	"reesift/pkg/reesift"
)

func main() {
	os.Exit(run())
}

func run() int {
	const runsPerCell = 8
	models := []reesift.Model{reesift.ModelSIGINT, reesift.ModelSIGSTOP}
	targets := []reesift.Target{
		reesift.TargetApp, reesift.TargetFTM,
		reesift.TargetExecArmor, reesift.TargetHeartbeat,
	}

	fmt.Printf("crash/hang campaign: %d runs per model x target\n\n", runsPerCell)
	fmt.Printf("%-9s %-16s %5s %5s %5s  %-15s %-15s %-12s\n",
		"MODEL", "TARGET", "INJ", "REC", "CORR", "PERCEIVED (s)", "ACTUAL (s)", "RECOVERY (s)")
	totalRuns, totalSys := 0, 0
	for _, model := range models {
		for ti, target := range targets {
			var perceived, actual, recovery reesift.Sample
			injected, recovered, correlated := 0, 0, 0
			for i := 0; i < runsPerCell; i++ {
				res, err := reesift.Injection{
					Seed:   int64(1000*int(model) + 100*ti + i),
					Model:  model,
					Target: target,
					Apps:   []*reesift.AppSpec{reesift.RoverApp(1, "node-a1", "node-a2")},
				}.Run()
				if err != nil {
					fmt.Println("injection setup failed:", err)
					return 1
				}
				if res.Injected == 0 {
					continue
				}
				injected++
				totalRuns++
				if res.Done && !res.SystemFailure {
					recovered++
					perceived.AddDuration(res.Perceived)
					actual.AddDuration(res.Actual)
				} else {
					totalSys++
				}
				if res.Correlated {
					correlated++
				}
				if res.Recovered {
					recovery.AddDuration(res.RecoveryTime)
				}
			}
			fmt.Printf("%-9s %-16s %5d %5d %5d  %-15s %-15s %-12s\n",
				model, target, injected, recovered, correlated,
				perceived.MeanCI(), actual.MeanCI(), recovery.MeanCI())
		}
	}
	fmt.Printf("\n%d injected runs, %d system failures\n", totalRuns, totalSys)
	fmt.Printf("95%% no-failure bound on unrecoverable probability: p < %.5f\n",
		reesift.NoFailureBound(totalRuns))
	if totalSys > 0 {
		fmt.Println("(the paper recovered all 734 crash/hang injections)")
		return 1
	}
	return 0
}
