// Faultcampaign: a small SIGINT/SIGSTOP injection campaign against all
// four targets (application, FTM, Execution ARMOR, Heartbeat ARMOR),
// printing a Table 4-shaped summary. This is the programmatic equivalent
// of `reesift -exp table4` with custom campaign sizes.
package main

import (
	"fmt"
	"os"

	"reesift/internal/apps/rover"
	"reesift/internal/inject"
	"reesift/internal/sift"
	"reesift/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	const runsPerCell = 8
	models := []inject.Model{inject.ModelSIGINT, inject.ModelSIGSTOP}
	targets := []inject.TargetKind{
		inject.TargetApp, inject.TargetFTM,
		inject.TargetExecArmor, inject.TargetHeartbeat,
	}

	fmt.Printf("crash/hang campaign: %d runs per model x target\n\n", runsPerCell)
	fmt.Printf("%-9s %-16s %5s %5s %5s  %-15s %-15s %-12s\n",
		"MODEL", "TARGET", "INJ", "REC", "CORR", "PERCEIVED (s)", "ACTUAL (s)", "RECOVERY (s)")
	totalRuns, totalSys := 0, 0
	for _, model := range models {
		for ti, target := range targets {
			var perceived, actual, recovery stats.Sample
			injected, recovered, correlated := 0, 0, 0
			for i := 0; i < runsPerCell; i++ {
				app := rover.Spec(1, []string{"node-a1", "node-a2"}, rover.DefaultParams())
				res := inject.Run(inject.Config{
					Seed:   int64(1000*int(model) + 100*ti + i),
					Model:  model,
					Target: target,
					Apps:   []*sift.AppSpec{app},
				})
				if res.Injected == 0 {
					continue
				}
				injected++
				totalRuns++
				if res.Done && !res.SystemFailure {
					recovered++
					perceived.AddDuration(res.Perceived)
					actual.AddDuration(res.Actual)
				} else {
					totalSys++
				}
				if res.Correlated {
					correlated++
				}
				if res.Recovered {
					recovery.AddDuration(res.RecoveryTime)
				}
			}
			fmt.Printf("%-9s %-16s %5d %5d %5d  %-15s %-15s %-12s\n",
				model, target, injected, recovered, correlated,
				perceived.MeanCI(), actual.MeanCI(), recovery.MeanCI())
		}
	}
	fmt.Printf("\n%d injected runs, %d system failures\n", totalRuns, totalSys)
	fmt.Printf("95%% no-failure bound on unrecoverable probability: p < %.5f\n",
		stats.NoFailureBound(totalRuns))
	if totalSys > 0 {
		fmt.Println("(the paper recovered all 734 crash/hang injections)")
		return 1
	}
	return 0
}
