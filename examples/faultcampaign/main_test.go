package main

import (
	"os"
	"testing"
)

// TestRunSmoke drives the example's main path through the reesift façade
// and asserts a clean exit. The example's stdout is silenced so the test
// log stays readable.
func TestRunSmoke(t *testing.T) {
	if code := runSilenced(t); code != 0 {
		t.Fatalf("run() = %d, want 0", code)
	}
}

func runSilenced(t *testing.T) int {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	return run(3, 1, false)
}
