// Heartbeat_tuning reproduces the Section 5.3 trade-off study through
// the public Sweep API: sweeping the heartbeat period changes how
// quickly FTM failures are detected. Perceived application execution
// time grows with the period while actual execution time stays flat —
// and the paper picked 10 s to avoid false alarms at the aggressive
// end.
//
// The sweep derives every run's seed from the campaign identity
// ("heartbeat-tuning/period=5s", run), so cells never collide on a
// seed range and the whole table is reproducible from the base seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"reesift/pkg/reesift"
)

func main() {
	runs := flag.Int("runs", 6, "injection runs per heartbeat period")
	seed := flag.Int64("seed", 1, "campaign base seed")
	flag.Parse()
	os.Exit(run(*runs, *seed))
}

func run(runs int, seed int64) int {
	periods := []time.Duration{5 * time.Second, 10 * time.Second, 20 * time.Second, 30 * time.Second}
	points := make([]reesift.SweepPoint, len(periods))
	for i, period := range periods {
		points[i] = reesift.ClusterPoint(period.String(), reesift.WithHeartbeatPeriod(period))
	}
	cres, err := (&reesift.Sweep{
		Name:        "heartbeat-tuning",
		Seed:        seed,
		RunsPerCell: runs,
		Base: reesift.Injection{
			Model:  reesift.ModelSIGINT,
			Target: reesift.TargetFTM,
			Apps:   []*reesift.AppSpec{reesift.RoverApp(1, "node-a1", "node-a2")},
		},
	}).Axis("period", points...).Run()
	if err != nil {
		fmt.Println("sweep failed:", err)
		return 1
	}

	fmt.Println("FTM SIGINT injections under varying heartbeat periods (Section 5.3)")
	fmt.Printf("%-10s %-16s %-16s %-14s\n", "PERIOD", "PERCEIVED (s)", "ACTUAL (s)", "FTM RECOVERY (s)")
	for i, period := range periods {
		var perceived, actual, recovery reesift.Sample
		for _, res := range cres.Cells[i].Results {
			if !res.Done {
				continue
			}
			perceived.AddDuration(res.Perceived)
			actual.AddDuration(res.Actual)
			if res.Recovered {
				recovery.AddDuration(res.RecoveryTime)
			}
		}
		fmt.Printf("%-10s %-16s %-16s %-14s\n", period, perceived.MeanCI(), actual.MeanCI(), recovery.MeanCI())
	}
	fmt.Println("\npaper Table 5: perceived 77.9 -> 96.7 s as the period grows 5 -> 30 s; actual flat (~73 s)")
	return 0
}
