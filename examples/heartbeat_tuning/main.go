// Heartbeat_tuning reproduces the Section 5.3 trade-off study through
// the reesift façade: sweeping the heartbeat period changes how quickly
// FTM failures are detected. Perceived application execution time grows
// with the period while actual execution time stays flat — and the paper
// picked 10 s to avoid false alarms at the aggressive end.
package main

import (
	"fmt"
	"os"
	"time"

	"reesift/pkg/reesift"
)

func main() {
	os.Exit(run())
}

func run() int {
	const runs = 6
	fmt.Println("FTM SIGINT injections under varying heartbeat periods (Section 5.3)")
	fmt.Printf("%-10s %-16s %-16s %-14s\n", "PERIOD", "PERCEIVED (s)", "ACTUAL (s)", "FTM RECOVERY (s)")
	for _, period := range []time.Duration{5 * time.Second, 10 * time.Second, 20 * time.Second, 30 * time.Second} {
		var perceived, actual, recovery reesift.Sample
		for i := 0; i < runs; i++ {
			res, err := reesift.Injection{
				Seed:   int64(9000 + 100*int(period.Seconds()) + i),
				Model:  reesift.ModelSIGINT,
				Target: reesift.TargetFTM,
				Apps:   []*reesift.AppSpec{reesift.RoverApp(1, "node-a1", "node-a2")},
				Cluster: []reesift.Option{
					reesift.WithHeartbeatPeriod(period),
				},
			}.Run()
			if err != nil {
				fmt.Println("injection setup failed:", err)
				return 1
			}
			if !res.Done {
				continue
			}
			perceived.AddDuration(res.Perceived)
			actual.AddDuration(res.Actual)
			if res.Recovered {
				recovery.AddDuration(res.RecoveryTime)
			}
		}
		fmt.Printf("%-10s %-16s %-16s %-14s\n", period, perceived.MeanCI(), actual.MeanCI(), recovery.MeanCI())
	}
	fmt.Println("\npaper Table 5: perceived 77.9 -> 96.7 s as the period grows 5 -> 30 s; actual flat (~73 s)")
	return 0
}
