package main

import (
	"os"
	"testing"
	"time"
)

// TestRunSmoke drives a short chaos campaign (one 2-hour trial) through
// the public Arrival API and asserts a clean exit. Stdout is silenced so
// the test log stays readable.
func TestRunSmoke(t *testing.T) {
	if code := silenced(t, func() int { return run(1, 2, 4*time.Minute, 1, false) }); code != 0 {
		t.Fatalf("run() = %d, want 0", code)
	}
}

func silenced(t *testing.T, f func() int) int {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	return f()
}
