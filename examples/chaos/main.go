// Chaos: a long-horizon continuous-fault campaign authored on the public
// Arrival API. Instead of one fault per run, each trial simulates hours
// of operation under a Poisson arrival process of SIGINT faults against
// the Execution ARMOR, with a relay service beating through the
// progress-indicator interface as the availability probe. The campaign
// reports per-trial availability, the MTTR distribution, and — via the
// Observer's OnArrival hook — a replayed log of every fault arrival.
//
// This is the programmatic equivalent of `reesift -exp chaos`, reduced
// to a single cell with adjustable horizon and trial count.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"reesift/pkg/reesift"
)

func main() {
	trials := flag.Int("trials", 2, "long-horizon trials to run")
	hours := flag.Int("hours", 24, "simulated hours per trial")
	mean := flag.Duration("mean", 4*time.Minute, "mean time between fault arrivals")
	seed := flag.Int64("seed", 1, "campaign base seed")
	arrivals := flag.Bool("arrivals", false, "stream every fault arrival to stderr")
	flag.Parse()
	os.Exit(run(*trials, *hours, *mean, *seed, *arrivals))
}

func run(trials, hours int, mean time.Duration, seed int64, streamArrivals bool) int {
	campaign := reesift.Campaign{
		Name: "chaos-example",
		Seed: seed,
		Cells: []reesift.CampaignCell{{
			Name: "poisson/exec",
			Runs: trials,
			Injection: reesift.Injection{
				Model:  reesift.ModelSIGINT,
				Target: reesift.TargetExecArmor,
				Arrival: &reesift.Arrival{
					Process:     reesift.ArrivalPoisson,
					Horizon:     time.Duration(hours) * time.Hour,
					MeanBetween: mean,
				},
			},
		}},
	}
	observed := 0
	campaign.Observer = &reesift.Observer{
		OnArrival: func(ref reesift.RunRef, ev reesift.ArrivalEvent) {
			observed++
			if streamArrivals {
				fmt.Fprintf(os.Stderr, "trial %d: %v %s -> %s\n", ref.Run, ev.At, ev.Model, ev.Target)
			}
		},
	}
	cres, err := campaign.Run()
	if err != nil {
		fmt.Println("campaign setup failed:", err)
		return 1
	}

	fmt.Printf("continuous chaos: %d trial(s) x %dh simulated, Poisson arrivals every %v on average\n\n", trials, hours, mean)
	fmt.Printf("%-6s %-9s %-6s %-13s %-6s %-13s %-13s %s\n",
		"TRIAL", "ARRIVALS", "DOWNS", "AVAILABILITY", "UNREC", "MTTR p50 (s)", "MTTR p95 (s)", "MTTR max (s)")
	cell := cres.Cell("poisson/exec")
	sane := true
	for i, res := range cell.Results {
		st := res.Chaos
		if st == nil {
			fmt.Printf("%-6d (no chaos stats)\n", i)
			sane = false
			continue
		}
		fmt.Printf("%-6d %-9d %-6d %-13.6f %-6v %-13.2f %-13.2f %.2f\n",
			i, st.Arrivals, st.Downs, st.Availability, st.Unrecoverable,
			st.MTTRp50.Seconds(), st.MTTRp95.Seconds(), st.MTTRMax.Seconds())
		if st.Arrivals == 0 || st.Availability <= 0 || st.Availability > 1 {
			sane = false
		}
	}
	fmt.Printf("\nobserver replayed %d arrival events (campaign tally: %d runs, %d insertions)\n",
		observed, cres.Tally.Runs, cres.Tally.Injections)
	if !sane || observed == 0 {
		fmt.Println("chaos campaign produced implausible statistics")
		return 1
	}
	return 0
}
