// Quickstart: boot a four-node REE cluster through the reesift façade,
// install the SIFT environment (daemons, FTM, Heartbeat ARMOR), submit
// the Mars Rover texture analysis program through the SCC, and print the
// run timeline.
package main

import (
	"fmt"
	"os"
	"time"

	"reesift/pkg/reesift"
)

func main() {
	os.Exit(run())
}

func run() int {
	// A deterministic simulated cluster: same seed, same run. The
	// builder installs daemons on every node, the FTM through one
	// daemon, and the Heartbeat ARMOR on a second node (Table 1 step 1).
	c, err := reesift.NewCluster(
		reesift.WithNodes(4),
		reesift.WithSeed(42),
	)
	if err != nil {
		fmt.Println("cluster setup failed:", err)
		return 1
	}
	defer c.Close()

	// Step 2: submit the texture analysis program on two nodes.
	app := reesift.RoverApp(1, "node-a1", "node-a2")
	handle := c.Submit(app, 5*time.Second)

	if !c.RunUntilDone(10 * time.Minute) {
		fmt.Println("application did not complete")
		return 1
	}
	perceived, _ := handle.PerceivedTime()
	started, _ := c.Log().First("app-started")
	ended, _ := c.Log().Last("app-rank-exit")

	fmt.Println("REE SIFT quickstart: Mars Rover texture analysis on a 4-node cluster")
	fmt.Printf("  submitted at        %8.2f s (virtual)\n", handle.SubmittedAt.Seconds())
	fmt.Printf("  app started at      %8.2f s\n", started.At.Seconds())
	fmt.Printf("  app ended at        %8.2f s\n", ended.At.Seconds())
	fmt.Printf("  SCC notified at     %8.2f s\n", handle.DoneAt.Seconds())
	fmt.Printf("  actual exec time    %8.2f s\n", (ended.At - started.At).Seconds())
	fmt.Printf("  perceived exec time %8.2f s\n", perceived.Seconds())
	fmt.Printf("  restarts            %8d\n", handle.Restarts)

	// Verify the segmentation output against the reference pipeline.
	verdict, err := reesift.RoverVerdict(c.SharedFS(), app.ID)
	if err != nil {
		fmt.Println("reference pipeline failed:", err)
		return 1
	}
	fmt.Printf("  output verdict      %8s\n", verdict)

	fmt.Println("\nSIFT environment timeline:")
	for _, e := range c.Log().Entries {
		fmt.Printf("  %8.3f s  %-24s %s\n", e.At.Seconds(), e.Kind, e.Detail)
	}
	return 0
}
