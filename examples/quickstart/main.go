// Quickstart: boot a four-node REE cluster, install the SIFT environment
// (daemons, FTM, Heartbeat ARMOR), submit the Mars Rover texture analysis
// program through the SCC, and print the run timeline.
package main

import (
	"fmt"
	"os"
	"time"

	"reesift/internal/apps/rover"
	"reesift/internal/sift"
	"reesift/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	// A deterministic simulated cluster: same seed, same run.
	k := sim.NewKernel(sim.DefaultConfig(42))
	defer k.Shutdown()

	// Table 1, step 1: the SCC installs daemons on every node, the FTM
	// through one daemon, and the Heartbeat ARMOR on a second node.
	env := sift.New(k, sift.DefaultEnvConfig())
	env.Setup()

	// Step 2: submit the texture analysis program on two nodes.
	params := rover.DefaultParams()
	app := rover.Spec(1, []string{"node-a1", "node-a2"}, params)
	handle := env.Submit(app, 5*time.Second)

	env.AppDoneHook = func(sift.AppID) { k.Stop() }
	k.Run(10 * time.Minute)

	if !handle.Done {
		fmt.Println("application did not complete")
		return 1
	}
	perceived, _ := handle.PerceivedTime()
	started, _ := env.Log.First("app-started")
	ended, _ := env.Log.Last("app-rank-exit")

	fmt.Println("REE SIFT quickstart: Mars Rover texture analysis on a 4-node cluster")
	fmt.Printf("  submitted at        %8.2f s (virtual)\n", handle.SubmittedAt.Seconds())
	fmt.Printf("  app started at      %8.2f s\n", started.At.Seconds())
	fmt.Printf("  app ended at        %8.2f s\n", ended.At.Seconds())
	fmt.Printf("  SCC notified at     %8.2f s\n", handle.DoneAt.Seconds())
	fmt.Printf("  actual exec time    %8.2f s\n", (ended.At - started.At).Seconds())
	fmt.Printf("  perceived exec time %8.2f s\n", perceived.Seconds())
	fmt.Printf("  restarts            %8d\n", handle.Restarts)

	// Verify the segmentation output against the reference pipeline.
	img := rover.GenerateImage(params.ImageSize, params.Seed)
	ref, _, err := rover.Analyze(img, params.Clusters)
	if err != nil {
		fmt.Println("reference pipeline failed:", err)
		return 1
	}
	verdict := rover.Verify(k.SharedFS(), app.ID, ref, params.Tolerance)
	fmt.Printf("  output verdict      %8s\n", verdict)

	fmt.Println("\nSIFT environment timeline:")
	for _, e := range env.Log.Entries {
		fmt.Printf("  %8.3f s  %-24s %s\n", e.At.Seconds(), e.Kind, e.Detail)
	}
	return 0
}
