// Multiapp runs the Section 8 configuration through the reesift façade:
// the Mars Rover texture analysis program and the OTIS thermal imaging
// spectrometer executing simultaneously on a six-node cluster, with a
// mid-run Execution ARMOR hang to show that recovering one application's
// SIFT process does not disturb the other application.
package main

import (
	"fmt"
	"os"
	"time"

	"reesift/pkg/reesift"
)

func main() {
	os.Exit(run())
}

func run() int {
	c, err := reesift.NewCluster(
		reesift.WithNodes(6),
		reesift.WithSeed(7),
	)
	if err != nil {
		fmt.Println("cluster setup failed:", err)
		return 1
	}
	defer c.Close()

	roverApp := reesift.RoverApp(1, "n1", "n2")
	otisApp := reesift.OTISApp(2, "n3", "n4")
	hr := c.Submit(roverApp, 5*time.Second)
	ho := c.Submit(otisApp, 5*time.Second)

	// Hang OTIS's rank-0 Execution ARMOR mid-run: the daemon's
	// are-you-alive polling detects it, the FTM reinstalls it from its
	// microcheckpoint, and neither application is restarted.
	c.At(60*time.Second, func() {
		c.SuspendExecArmor(otisApp.ID, 0)
	})

	allDone := c.RunUntilDone(20 * time.Minute)

	fmt.Println("two applications on six nodes with a mid-run Execution ARMOR hang")
	report := func(name string, h *reesift.AppHandle) {
		if !h.Done {
			fmt.Printf("  %-6s DID NOT COMPLETE\n", name)
			return
		}
		p, _ := h.PerceivedTime()
		fmt.Printf("  %-6s perceived %7.2f s, restarts %d\n", name, p.Seconds(), h.Restarts)
	}
	report("rover", hr)
	report("otis", ho)

	fmt.Println("\nSIFT recovery events:")
	for _, r := range c.Log().Recoveries {
		fmt.Printf("  %-12s detected %7.2f s, reinstalled %7.2f s (recovery %.2f s)\n",
			r.ID, r.DetectedAt.Seconds(), r.RestoredAt.Seconds(),
			(r.RestoredAt - r.DetectedAt).Seconds())
	}
	if !allDone {
		return 1
	}
	// The rover must be untouched by the OTIS-side ARMOR failure.
	if hr.Restarts != 0 {
		fmt.Println("unexpected rover restart")
		return 1
	}
	return 0
}
