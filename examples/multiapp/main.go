// Multiapp runs the Section 8 configuration: the Mars Rover texture
// analysis program and the OTIS thermal imaging spectrometer executing
// simultaneously on a six-node cluster, with a mid-run Execution ARMOR
// hang to show that recovering one application's SIFT process does not
// disturb the other application.
package main

import (
	"fmt"
	"os"
	"time"

	"reesift/internal/apps/otis"
	"reesift/internal/apps/rover"
	"reesift/internal/sift"
	"reesift/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	k := sim.NewKernel(sim.DefaultConfig(7))
	defer k.Shutdown()
	env := sift.New(k, sift.DefaultEnvConfig("n1", "n2", "n3", "n4", "n5", "n6"))
	env.Setup()

	roverApp := rover.Spec(1, []string{"n1", "n2"}, rover.DefaultParams())
	otisApp := otis.Spec(2, []string{"n3", "n4"}, otis.DefaultParams())
	hr := env.Submit(roverApp, 5*time.Second)
	ho := env.Submit(otisApp, 5*time.Second)

	// Hang OTIS's rank-0 Execution ARMOR mid-run: the daemon's
	// are-you-alive polling detects it, the FTM reinstalls it from its
	// microcheckpoint, and neither application is restarted.
	k.Schedule(60*time.Second, func() {
		if pid := env.ProcOf(sift.AIDExec(2, 0)); pid != sim.NoPID {
			k.Suspend(pid)
		}
	})

	remaining := 2
	env.AppDoneHook = func(sift.AppID) {
		remaining--
		if remaining == 0 {
			k.Stop()
		}
	}
	k.Run(20 * time.Minute)

	fmt.Println("two applications on six nodes with a mid-run Execution ARMOR hang")
	report := func(name string, h *sift.AppHandle) {
		if !h.Done {
			fmt.Printf("  %-6s DID NOT COMPLETE\n", name)
			return
		}
		p, _ := h.PerceivedTime()
		fmt.Printf("  %-6s perceived %7.2f s, restarts %d\n", name, p.Seconds(), h.Restarts)
	}
	report("rover", hr)
	report("otis", ho)

	fmt.Println("\nSIFT recovery events:")
	for _, r := range env.Log.Recoveries {
		fmt.Printf("  %-12s detected %7.2f s, reinstalled %7.2f s (recovery %.2f s)\n",
			r.ID, r.DetectedAt.Seconds(), r.RestoredAt.Seconds(),
			(r.RestoredAt - r.DetectedAt).Seconds())
	}
	if !hr.Done || !ho.Done {
		return 1
	}
	// The rover must be untouched by the OTIS-side ARMOR failure.
	if hr.Restarts != 0 {
		fmt.Println("unexpected rover restart")
		return 1
	}
	return 0
}
