module reesift

go 1.24
