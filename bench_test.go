// Package reesift_bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks: one benchmark per table/figure, each
// printing the reproduced table once. Benchmarks run the SmallScale
// campaigns (the same code as the paper-scale CLI, at reduced run counts);
// `go run ./cmd/reesift -scale paper` produces the full-size campaigns.
package reesift_bench

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"reesift/internal/experiments"
	"reesift/internal/sim"
	"reesift/pkg/reesift"
)

// scale is shared by all benchmarks. Workers is left at zero, so every
// benchmark exercises the campaign engine's parallel path at GOMAXPROCS
// workers; BenchmarkCampaignWorkers pins the 1-vs-N comparison.
func scale() experiments.Scale { return experiments.SmallScale() }

// printOnce avoids flooding the benchmark log on -benchtime reruns.
var printed sync.Map

func report(b *testing.B, id string, render func() (string, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := render()
		if err != nil {
			b.Fatal(err)
		}
		if _, dup := printed.LoadOrStore(id, true); !dup {
			fmt.Println(out)
		}
	}
}

// BenchmarkCampaignWorkers runs the Table 7 heap campaign — a pure
// fan-out of independent trials — at a sweep of worker counts. The
// workers=1 case is the sequential baseline; the speedup of the
// GOMAXPROCS case over it is the campaign engine's headline number, and
// the tables rendered at every worker count are byte-identical (see
// TestCampaignDeterminismAcrossWorkerCounts).
func BenchmarkCampaignWorkers(b *testing.B) {
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	seen := make(map[int]bool)
	for _, w := range counts {
		if seen[w] {
			continue // 1- and 2-core machines collapse the sweep
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			sc := scale().WithWorkers(w)
			for i := 0; i < b.N; i++ {
				if _, _, err := experiments.Table7(sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable3Baseline(b *testing.B) {
	report(b, "table3", func() (string, error) {
		t, _, err := experiments.Table3(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkTable4CrashHang(b *testing.B) {
	report(b, "table4", func() (string, error) {
		t, _, err := experiments.Table4(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkTable5Heartbeat(b *testing.B) {
	report(b, "table5", func() (string, error) {
		t, _, err := experiments.Table5(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkTable6RegText(b *testing.B) {
	report(b, "table6", func() (string, error) {
		t, _, err := experiments.Table6(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkTable7Heap(b *testing.B) {
	report(b, "table7", func() (string, error) {
		t, _, err := experiments.Table7(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkTable8TargetedHeap(b *testing.B) {
	report(b, "table8", func() (string, error) {
		t8, _, _, err := experiments.Table8And9(scale())
		if err != nil {
			return "", err
		}
		return t8.Render(), nil
	})
}

func BenchmarkTable9Assertions(b *testing.B) {
	report(b, "table9", func() (string, error) {
		_, t9, _, err := experiments.Table8And9(scale())
		if err != nil {
			return "", err
		}
		return t9.Render(), nil
	})
}

func BenchmarkTable10AppHeap(b *testing.B) {
	report(b, "table10", func() (string, error) {
		t, _, err := experiments.Table10(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkTable11MultiApp(b *testing.B) {
	report(b, "table11", func() (string, error) {
		t11, _, _, err := experiments.Table11And12(scale())
		if err != nil {
			return "", err
		}
		return t11.Render(), nil
	})
}

func BenchmarkTable12MultiAppClass(b *testing.B) {
	report(b, "table12", func() (string, error) {
		_, t12, _, err := experiments.Table11And12(scale())
		if err != nil {
			return "", err
		}
		return t12.Render(), nil
	})
}

func BenchmarkFigure5Timeline(b *testing.B) {
	report(b, "figure5", func() (string, error) {
		t, err := experiments.Figure5(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkFigure6HangLatency(b *testing.B) {
	report(b, "figure6", func() (string, error) {
		t, _, err := experiments.Figure6(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkFigure7FTMPhases(b *testing.B) {
	report(b, "figure7", func() (string, error) {
		t, _, err := experiments.Figure7(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkFigure8CorrelatedStartup(b *testing.B) {
	report(b, "figure8", func() (string, error) {
		t, err := experiments.Figure8(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkFigure9SAN(b *testing.B) {
	report(b, "figure9", func() (string, error) {
		t, _, err := experiments.Figure9(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkFigure10RegistrationRace(b *testing.B) {
	report(b, "figure10", func() (string, error) {
		t, err := experiments.Figure10(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

// Ablation benches for the design choices DESIGN.md calls out: polling vs
// interrupt-driven hang detection (Section 5.1), element assertions
// on/off (Section 7/9), and node-local vs centralized checkpoint storage
// (Section 3.4).

func BenchmarkAblationWatchdog(b *testing.B) {
	report(b, "ablation-watchdog", func() (string, error) {
		t, err := experiments.AblationWatchdog(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkAblationAssertions(b *testing.B) {
	report(b, "ablation-assertions", func() (string, error) {
		t, err := experiments.AblationAssertions(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

func BenchmarkAblationCheckpointStore(b *testing.B) {
	report(b, "ablation-checkpoint-store", func() (string, error) {
		t, err := experiments.AblationSharedCheckpoints(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

// BenchmarkRecoveryTime runs the recovery-subsystem campaign (node
// crashes against application-hosting nodes, compound FTM/daemon
// losses) and reports the pooled mean application recovery time —
// failure detection to restarted code running — as a custom metric, so
// the BENCH.json artifact tracks the recovery path's performance
// trajectory alongside the campaign-engine speedup.
func BenchmarkRecoveryTime(b *testing.B) {
	var mean float64
	report(b, "recovery", func() (string, error) {
		t, data, err := experiments.TableRecovery(scale())
		if err != nil {
			return "", err
		}
		mean = data.MeanRecoverySeconds
		return t.Render(), nil
	})
	b.ReportMetric(mean, "s/recovery")
}

// BenchmarkSweepCampaign runs the recovery-sweep scenario — the public
// Campaign/Sweep API path (axis crossing, campaign-derived seeds,
// per-campaign census) — so the BENCH.json trajectory covers the
// authoring layer alongside the internal engine.
func BenchmarkSweepCampaign(b *testing.B) {
	report(b, "recovery-sweep", func() (string, error) {
		res, err := experiments.RecoverySweep(scale())
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	})
}

// BenchmarkChaosSimDay runs one 24-simulated-hour Poisson chaos trial
// (SIGINT arrivals against the Execution ARMOR, one every ~4 minutes on
// average) and reports wall-clock seconds per simulated day. This is
// the chaos subsystem's headline cost: how much real time a day of
// continuous background faulting takes, which bounds how long a horizon
// paper-scale chaos campaigns can afford. Gated against the previous
// run's BENCH.json by cmd/benchgate in CI.
func BenchmarkChaosSimDay(b *testing.B) {
	inj := reesift.Injection{
		Model:  reesift.ModelSIGINT,
		Target: reesift.TargetExecArmor,
		Seed:   1,
		Arrival: &reesift.Arrival{
			Process:     reesift.ArrivalPoisson,
			Horizon:     24 * time.Hour,
			MeanBetween: 4 * time.Minute,
		},
	}
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := inj.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Chaos == nil || res.Chaos.Arrivals == 0 {
			b.Fatal("chaos trial recorded no arrivals")
		}
	}
	b.ReportMetric(time.Since(start).Seconds()/float64(b.N), "s/sim-day")
}

// Kernel hot-path benchmarks. These are the alloc-gated pair: run with
// -benchmem, the steady-state loops must report 0 allocs/op (event
// records are pooled on the kernel free list, the ready queue and
// per-process inboxes are ring buffers, payloads are boxed once). CI
// records allocs/op and B/op in BENCH.json and cmd/benchgate fails the
// build if either comes back.

// BenchmarkKernelEvents measures the bare event loop: a periodic timer
// firing every simulated millisecond, re-arming itself, and pushing a
// pending watchdog-style event out with Reschedule on every tick —
// the Schedule/fire/Reschedule cycle every heartbeat and watchdog in
// the environment rides on. Each iteration advances the clock one
// simulated second (1000 fired events).
func BenchmarkKernelEvents(b *testing.B) {
	const period = time.Millisecond
	const window = time.Second
	k := sim.NewKernel(sim.Config{Seed: 1})
	// tick and the watchdog handle are bound once; the steady state
	// reuses pooled event records and the same func value.
	var tick func()
	wd := k.Schedule(time.Minute, func() {})
	tick = func() {
		wd.Reschedule(time.Minute)
		k.Schedule(period, tick)
	}
	k.Schedule(period, tick)
	limit := window
	k.Run(limit) // warm the event pool and heap backing array
	start := k.EventsFired()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		limit += window
		k.Run(limit)
	}
	b.StopTimer()
	fired := k.EventsFired() - start
	if fired == 0 {
		b.Fatal("kernel fired no events")
	}
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkSendRecv measures the message path: two processes on one
// node ping-ponging a pre-boxed payload through Send/Recv park/wake.
// Each iteration advances the clock 100 simulated milliseconds (500
// round trips at the 100 µs local latency).
func BenchmarkSendRecv(b *testing.B) {
	const window = 100 * time.Millisecond
	k := sim.NewKernel(sim.Config{Seed: 1})
	defer k.Shutdown()
	n := k.AddNode("bench")
	type ping struct{ beat int }
	payload := interface{}(ping{beat: 1}) // boxed once, outside the loop
	echo := k.Spawn(n, "echo", sim.NoPID, func(p *sim.Proc) {
		for {
			m := p.Recv()
			p.Send(m.From, m.Payload)
		}
	})
	k.Spawn(n, "driver", sim.NoPID, func(p *sim.Proc) {
		for {
			p.Send(echo, payload)
			p.Recv()
		}
	})
	limit := window
	k.Run(limit) // warm inbox rings and the event pool
	start := k.EventsFired()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		limit += window
		k.Run(limit)
	}
	b.StopTimer()
	fired := k.EventsFired() - start
	if fired == 0 {
		b.Fatal("kernel fired no events")
	}
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkScale1000 times the scale scenario's headline trial: a
// 1000-node cluster, 39 applications × 52 ranks (2028 Execution
// ARMORs), a node crash mid-run, and over an hour of simulated time.
// It reports the scale scenario's throughput metrics — events/sec and
// wall seconds per simulated day — as the gated baseline for "as fast
// as the hardware allows" at production scale.
func BenchmarkScale1000(b *testing.B) {
	inj := experiments.ScaleBenchInjection()
	var events uint64
	var simTime time.Duration
	for i := 0; i < b.N; i++ {
		res, err := inj.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.SystemFailure {
			b.Fatal("1000-node trial ended in a system failure")
		}
		if res.SimTime < time.Hour {
			b.Fatalf("trial simulated only %v; the scale claim needs ≥ 1h", res.SimTime)
		}
		events += res.EventsFired
		simTime += res.SimTime
	}
	wall := b.Elapsed().Seconds()
	if wall > 0 {
		b.ReportMetric(float64(events)/wall, "events/sec")
		b.ReportMetric(wall/(simTime.Hours()/24), "s/sim-day")
	}
}

// BenchmarkSplitBrain runs the split-brain reconciliation campaign —
// partition-then-heal against the Heartbeat ARMOR's node under
// incarnation epochs, plus the no-epochs ablation — and reports
// wall-clock seconds per campaign. The ablation cells run to their
// system-failure deadline, so this metric bounds what partition-heavy
// campaigns cost; gated against the previous run's BENCH.json by
// cmd/benchgate in CI.
func BenchmarkSplitBrain(b *testing.B) {
	start := time.Now()
	report(b, "split-brain", func() (string, error) {
		t, _, err := experiments.TableSplitBrain(scale())
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	b.ReportMetric(time.Since(start).Seconds()/float64(b.N), "s/split-brain")
}
